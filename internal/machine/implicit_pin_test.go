package machine_test

import (
	"reflect"
	"testing"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// TestImplicitTopologyRunsBitForBit pins the implicit (computed-
// neighbor) topologies at the machine level: a full run on the
// materialized form and on the implicit form of the same topology must
// produce identical Stats, field for field. The topology-level
// equivalence tests check adjacency; this one checks that the whole
// causal order — channel contention, tie-breaks, RNG consumption,
// sampling — is unchanged, which is what lets large machines switch
// forms without invalidating any pinned ledger number.
func TestImplicitTopologyRunsBitForBit(t *testing.T) {
	pairs := []struct {
		name string
		mat  *topology.Topology
		impl *topology.Topology
	}{
		{"torus-12x12", topology.NewTorus(12, 12), topology.NewTorusImplicit(12, 12)},
		{"grid-10x14", topology.NewGrid(10, 14), topology.NewGridImplicit(10, 14)},
		{"hypercube-d7", topology.NewHypercube(7), topology.NewHypercubeImplicit(7)},
	}
	for _, pair := range pairs {
		t.Run(pair.name, func(t *testing.T) {
			runOn := func(topo *topology.Topology) *machine.Stats {
				cfg := machine.DefaultConfig()
				cfg.Seed = 42
				cfg.SampleInterval = 100 // exercise the sampling path too
				st := machine.New(topo, workload.NewFib(14), core.NewCWN(4, 2), cfg).Run()
				if !st.Completed {
					t.Fatalf("%s run did not complete", topo.Name())
				}
				return st
			}
			mat := runOn(pair.mat)
			impl := runOn(pair.impl)
			if !reflect.DeepEqual(mat, impl) {
				t.Errorf("materialized and implicit %s runs diverge", pair.name)
				if mat.Makespan != impl.Makespan {
					t.Errorf("  Makespan %d vs %d", mat.Makespan, impl.Makespan)
				}
				if mat.Events != impl.Events {
					t.Errorf("  Events %d vs %d", mat.Events, impl.Events)
				}
				if !reflect.DeepEqual(mat.MsgCounts, impl.MsgCounts) {
					t.Errorf("  MsgCounts %v vs %v", mat.MsgCounts, impl.MsgCounts)
				}
				if !reflect.DeepEqual(mat.BusyPerPE, impl.BusyPerPE) {
					t.Errorf("  BusyPerPE diverges")
				}
				if !reflect.DeepEqual(mat.ChannelMsgs, impl.ChannelMsgs) {
					t.Errorf("  ChannelMsgs diverges")
				}
			}
		})
	}
}

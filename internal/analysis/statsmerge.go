package analysis

import (
	"go/ast"
	"go/types"
)

// Statsmerge enforces the exact-merge contract of sharded statistics:
// every field of a struct tagged //simlint:mergeable must be touched
// by the type's merge method, so a field added to the struct but
// forgotten in the merge — which would silently drop that statistic
// from every sharded run — fails the build instead of rotting until an
// equivalence test notices. Fields deliberately left out of the merge
// (labels, group-level outcome fields the coordinator owns, series the
// sharded path forbids) are tagged //simlint:nomerge <reason>.
//
// A merge method is any method on T or *T named merge or Merge whose
// single parameter is T or *T. A mergeable type with no merge method
// at all is itself reported.
var Statsmerge = &Analyzer{
	Name: "statsmerge",
	Doc:  "check every field of //simlint:mergeable structs is folded by the type's merge method",
	Run:  runStatsmerge,
}

func runStatsmerge(pass *Pass) error {
	tags := pass.CollectTags()

	// Tagged struct types in this package.
	type mergeable struct {
		obj    *types.TypeName
		strct  *types.Struct
		merges []*ast.FuncDecl
	}
	var targets []*mergeable
	byObj := make(map[types.Object]*mergeable)
	for obj, ds := range tags.Types {
		if !hasVerb(ds, "mergeable") {
			continue
		}
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Reportf(obj.Pos(), "//simlint:mergeable applies to struct types; %s is not a struct", obj.Name())
			continue
		}
		m := &mergeable{obj: tn, strct: st}
		targets = append(targets, m)
		byObj[obj] = m
	}
	if len(targets) == 0 {
		return nil
	}

	// Attach merge methods: methods named merge/Merge on (*)T with one
	// (*)T parameter.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			if fd.Name.Name != "merge" && fd.Name.Name != "Merge" {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := fn.Type().(*types.Signature)
			if sig.Params().Len() != 1 {
				continue
			}
			recvObj := namedBase(sig.Recv().Type())
			paramObj := namedBase(sig.Params().At(0).Type())
			if recvObj == nil || recvObj != paramObj {
				continue
			}
			if m, ok := byObj[recvObj]; ok {
				m.merges = append(m.merges, fd)
			}
		}
	}

	for _, m := range targets {
		if len(m.merges) == 0 {
			pass.Reportf(m.obj.Pos(), "type %s is tagged //simlint:mergeable but has no merge method (a method named merge/Merge on the type taking one %s parameter): sharded copies of it cannot be folded", m.obj.Name(), m.obj.Name())
			continue
		}
		touched := make(map[types.Object]bool)
		for _, fd := range m.merges {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				if obj := pass.TypesInfo.Uses[sel.Sel]; obj != nil {
					touched[obj] = true
				}
				return true
			})
		}
		for i := 0; i < m.strct.NumFields(); i++ {
			f := m.strct.Field(i)
			if touched[f] {
				continue
			}
			if d, ok := tags.FieldTag(f, "nomerge"); ok {
				if d.Args == "" {
					pass.Reportf(f.Pos(), "//simlint:nomerge on %s.%s needs a reason: say why shard copies of this field must not be folded", m.obj.Name(), f.Name())
				}
				continue
			}
			pass.Reportf(f.Pos(), "field %s.%s is not referenced by the type's merge method: sharded runs would silently drop this statistic — fold it into the merge, or tag it //simlint:nomerge <reason>", m.obj.Name(), f.Name())
		}
	}
	return nil
}

// namedBase returns the *types.TypeName behind T or *T, or nil.
func namedBase(t types.Type) types.Object {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}

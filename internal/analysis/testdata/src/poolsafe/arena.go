package poolsafefix

// node is carved out of a chunk-cursor arena rather than allocated one
// at a time: the allocator slices objects off a block and the free list
// hands them back. The free contract is identical to singleton pools —
// a parked node must not retain pointers into the dead object graph,
// whether its backing memory came from new(&node{}) or from a chunk.
//
//simlint:pooled
type node struct {
	parent *node
	val    int
}

var (
	nodeChunk []node
	nodeFree  []*node
)

// newNode is the arena allocator: pop the free list, else carve the
// next zero-valued slot off the current chunk.
func newNode() *node {
	if n := len(nodeFree); n > 0 {
		p := nodeFree[n-1]
		nodeFree[n-1] = nil
		nodeFree = nodeFree[:n-1]
		return p
	}
	if len(nodeChunk) == 0 {
		nodeChunk = make([]node, 64)
	}
	p := &nodeChunk[0]
	nodeChunk = nodeChunk[1:]
	return p
}

// freeNode is the compliant arena free: the pointer field is zeroed
// before the node parks, exactly as a singleton pool requires.
//
//simlint:free
func freeNode(p *node) {
	p.parent = nil
	nodeFree = append(nodeFree, p)
}

//simlint:free
func freeNodeDirty(p *node) { // want `freeNodeDirty parks a \*node on the free list without zeroing pointer-bearing field\(s\) parent`
	nodeFree = append(nodeFree, p)
}

// arenaUseAfterFree shows the use-after-free rule applies to
// arena-carved objects too: the slot may already be wearing its next
// identity.
func arenaUseAfterFree(p *node) int {
	freeNode(p)
	return p.val // want `p is used after freeNode returned it to the free list`
}

package machine_test

import (
	"testing"

	"cwnsim/internal/core"
	"cwnsim/internal/machine"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

func run(t *testing.T, topo *topology.Topology, tree *workload.Tree, strat machine.Strategy, mut func(*machine.Config)) *machine.Stats {
	t.Helper()
	cfg := machine.DefaultConfig()
	if mut != nil {
		mut(&cfg)
	}
	st := machine.New(topo, tree, strat, cfg).Run()
	if !st.Completed {
		t.Fatalf("%s on %s (%s): did not complete", strat.Name(), topo.Name(), tree.Name)
	}
	return st
}

// checkConservation asserts the invariants every correct run satisfies.
func checkConservation(t *testing.T, st *machine.Stats, tree *workload.Tree) {
	t.Helper()
	goals := int64(tree.Count())
	if st.GoalsExecuted != goals {
		t.Errorf("GoalsExecuted = %d, want %d (every goal exactly once)", st.GoalsExecuted, goals)
	}
	if st.RespIntegrated != goals-1 {
		t.Errorf("RespIntegrated = %d, want %d", st.RespIntegrated, goals-1)
	}
	if st.GoalHops.Total() != goals {
		t.Errorf("hop histogram total = %d, want %d", st.GoalHops.Total(), goals)
	}
	if want := tree.Eval(); st.Result != want {
		t.Errorf("Result = %d, want %d (simulation must compute the program's value)", st.Result, want)
	}
	if u := st.Utilization(); u <= 0 || u > 1.0000001 {
		t.Errorf("Utilization = %f out of (0,1]", u)
	}
	if st.MaxChannelUtilization() > 1.0000001 {
		t.Errorf("channel utilization %f > 1", st.MaxChannelUtilization())
	}
}

func TestCWNOnGrid(t *testing.T) {
	tree := workload.NewFib(10)
	strat := core.NewCWN(4, 2)
	st := run(t, topology.NewGrid(4, 4), tree, strat, nil)
	checkConservation(t, st, tree)

	// Radius bound: no goal travels more than 4 hops.
	if st.GoalHops.Max() > 4 {
		t.Errorf("goal travelled %d hops > radius 4", st.GoalHops.Max())
	}
	// Horizon: a goal stops only at >= 2 hops (except the root, which is
	// injected at hop 0 and never placed by the strategy).
	if st.GoalHops.Count(0) != 1 {
		t.Errorf("%d goals at 0 hops, want 1 (the root)", st.GoalHops.Count(0))
	}
	if st.GoalHops.Count(1) != 0 {
		t.Errorf("%d goals stopped at 1 hop despite horizon 2", st.GoalHops.Count(1))
	}
	// CWN must actually spread work: several PEs busy.
	busyPEs := 0
	for i := 0; i < st.P; i++ {
		if st.BusyPerPE[i] > 0 {
			busyPEs++
		}
	}
	if busyPEs < st.P/2 {
		t.Errorf("only %d/%d PEs did work under CWN", busyPEs, st.P)
	}
	if st.Speedup() <= 1.5 {
		t.Errorf("CWN speedup = %.2f, want > 1.5 on 16 PEs", st.Speedup())
	}
}

func TestGradientOnGrid(t *testing.T) {
	tree := workload.NewFib(10)
	strat := core.NewGradient(1, 2, 20)
	st := run(t, topology.NewGrid(4, 4), tree, strat, nil)
	checkConservation(t, st, tree)

	// GM keeps much work local: a large share of goals never move.
	zero := float64(st.GoalHops.Count(0)) / float64(st.GoalHops.Total())
	if zero < 0.2 {
		t.Errorf("GM zero-hop share = %.2f, want >= 0.2", zero)
	}
	if st.Speedup() <= 1.0 {
		t.Errorf("GM speedup = %.2f, want > 1", st.Speedup())
	}
}

func TestCWNBeatsGMOnGridFib(t *testing.T) {
	// The paper's headline result, at small scale: CWN yields at least
	// as much speedup as GM on a grid.
	tree := workload.NewFib(12)
	topo := topology.NewGrid(5, 5)
	cwn := run(t, topo, tree, core.PaperCWNGrid(), nil)
	gm := run(t, topo, tree, core.PaperGMGrid(), nil)
	if cwn.Speedup() < gm.Speedup() {
		t.Errorf("CWN speedup %.2f < GM %.2f — paper's central claim violated at fib(12)/5x5",
			cwn.Speedup(), gm.Speedup())
	}
	// And CWN pays more communication per goal (paper: ~3x distance).
	if cwn.AvgGoalHops() <= gm.AvgGoalHops() {
		t.Errorf("CWN avg hops %.2f <= GM %.2f — expected CWN to travel farther",
			cwn.AvgGoalHops(), gm.AvgGoalHops())
	}
}

func TestAllStrategiesCompleteEverywhere(t *testing.T) {
	topos := []*topology.Topology{
		topology.NewGrid(3, 3),
		topology.NewTorus(3, 3),
		topology.NewDLM(5, 5, 5),
		topology.NewHypercube(3),
		topology.NewRing(6),
		topology.NewStar(5),
		topology.NewSingle(),
		topology.NewBusGlobal(4),
	}
	strats := []machine.Strategy{
		core.NewCWN(3, 1),
		core.NewGradient(1, 2, 20),
		core.NewACWN(3, 1, 3, 40),
		core.NewLocal(),
		core.NewRandomWalk(2),
		core.NewRoundRobin(),
		core.NewWorkSteal(20, 1),
	}
	tree := workload.NewFib(8)
	for _, topo := range topos {
		for _, strat := range strats {
			st := run(t, topo, tree, strat, nil)
			checkConservation(t, st, tree)
		}
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	tree := workload.NewFib(9)
	topo := topology.NewGrid(4, 4)
	mk := func(seed int64) *machine.Stats {
		cfg := machine.DefaultConfig()
		cfg.Seed = seed
		cfg.SampleInterval = 50
		return machine.New(topo, tree, core.NewCWN(4, 1), cfg).Run()
	}
	a, b := mk(7), mk(7)
	if a.Makespan != b.Makespan || a.TotalBusy != b.TotalBusy || a.TotalMessages() != b.TotalMessages() {
		t.Fatalf("same seed diverged: makespan %d vs %d, busy %d vs %d, msgs %d vs %d",
			a.Makespan, b.Makespan, a.TotalBusy, b.TotalBusy, a.TotalMessages(), b.TotalMessages())
	}
	for i := range a.BusyPerPE {
		if a.BusyPerPE[i] != b.BusyPerPE[i] {
			t.Fatalf("same seed diverged at PE %d", i)
		}
	}
	if a.Timeline.Len() != b.Timeline.Len() {
		t.Fatal("timelines differ in length")
	}
}

func TestSeedsAcrossRunsConserve(t *testing.T) {
	tree := workload.NewFib(9)
	topo := topology.NewGrid(3, 3)
	for seed := int64(0); seed < 15; seed++ {
		cfg := machine.DefaultConfig()
		cfg.Seed = seed
		st := machine.New(topo, tree, core.NewCWN(4, 1), cfg).Run()
		if !st.Completed {
			t.Fatalf("seed %d did not complete", seed)
		}
		checkConservation(t, st, tree)
		if st.GoalHops.Max() > 4 {
			t.Fatalf("seed %d: hops %d > radius", seed, st.GoalHops.Max())
		}
	}
}

func TestTimelineSampling(t *testing.T) {
	tree := workload.NewFib(11)
	st := run(t, topology.NewGrid(4, 4), tree, core.NewCWN(4, 1), func(c *machine.Config) {
		c.SampleInterval = 50
	})
	if st.Timeline.Len() < 2 {
		t.Fatalf("timeline has %d points, want >= 2", st.Timeline.Len())
	}
	for _, p := range st.Timeline.Points {
		if p.V < 0 || p.V > 100.0001 {
			t.Fatalf("timeline sample %f%% out of [0,100]", p.V)
		}
	}
	// The mean of windowed samples should roughly match the overall
	// utilization (within sampling noise of the tail window).
	if st.Timeline.Mean() < st.UtilizationPercent()-25 || st.Timeline.Mean() > st.UtilizationPercent()+25 {
		t.Errorf("timeline mean %.1f%% far from overall %.1f%%", st.Timeline.Mean(), st.UtilizationPercent())
	}
}

func TestResponsesRouteShortestPath(t *testing.T) {
	tree := workload.NewFib(9)
	topo := topology.NewGrid(4, 4)
	st := run(t, topo, tree, core.NewCWN(6, 1), nil)
	// A response travels at most the diameter per delivery.
	if st.RespHops.Max() > topo.Diameter() {
		t.Errorf("response travelled %d hops > diameter %d", st.RespHops.Max(), topo.Diameter())
	}
	if st.RespHops.Total() != int64(tree.Count()-1) {
		t.Errorf("responses delivered = %d, want %d", st.RespHops.Total(), tree.Count()-1)
	}
}

func TestLocalStrategyIsSequential(t *testing.T) {
	tree := workload.NewFib(9)
	st := run(t, topology.NewGrid(4, 4), tree, core.NewLocal(), nil)
	checkConservation(t, st, tree)
	if st.Speedup() != 1.0 {
		t.Errorf("Local speedup = %f, want exactly 1 (everything on root PE)", st.Speedup())
	}
	if st.BusyPerPE[1] != 0 {
		t.Error("Local strategy leaked work off the root PE")
	}
}

func TestChainHasNoParallelism(t *testing.T) {
	tree := workload.NewChain(50)
	st := run(t, topology.NewGrid(3, 3), tree, core.NewCWN(4, 1), nil)
	checkConservation(t, st, tree)
	if st.Speedup() > 1.0 {
		t.Errorf("chain speedup = %f > 1: impossible for a sequential dependency chain", st.Speedup())
	}
}

func TestNoLoadInfoStillCompletes(t *testing.T) {
	// With periodic broadcasts and piggybacking both off, CWN sees all
	// neighbor loads as 0 and effectively random-walks to the horizon —
	// it must still complete correctly.
	tree := workload.NewFib(9)
	st := run(t, topology.NewGrid(4, 4), tree, core.NewCWN(4, 2), func(c *machine.Config) {
		c.LoadInterval = 0
		c.PiggybackLoad = false
	})
	checkConservation(t, st, tree)
	if st.MsgCounts[machine.MsgLoad] != 0 {
		t.Errorf("load messages sent with LoadInterval=0: %d", st.MsgCounts[machine.MsgLoad])
	}
}

func TestCommitmentAwareLoadMetric(t *testing.T) {
	tree := workload.NewFib(10)
	st := run(t, topology.NewGrid(4, 4), tree, core.NewCWN(4, 1), func(c *machine.Config) {
		c.LoadMetric = machine.LoadQueuePlusPending
	})
	checkConservation(t, st, tree)
}

func TestHighCommRatioStillCorrect(t *testing.T) {
	// The paper's caveat: when communication is expensive CWN loses its
	// edge. Whatever the performance, the run must stay correct.
	tree := workload.NewFib(9)
	st := run(t, topology.NewGrid(3, 3), tree, core.PaperCWNGrid(), func(c *machine.Config) {
		c.GoalHopTime = 20 // 2x the grain time per hop
		c.RespHopTime = 20
	})
	checkConservation(t, st, tree)
}

func TestDLMBroadcastDuplicatesHarmless(t *testing.T) {
	// On a DLM some neighbor pairs share two buses, so broadcasts arrive
	// twice; GM proximity updates must stay consistent.
	tree := workload.NewFib(10)
	st := run(t, topology.NewDLM(5, 5, 5), tree, core.PaperGMDLM(), nil)
	checkConservation(t, st, tree)
}

func TestGradientRequireTargetVariant(t *testing.T) {
	tree := workload.NewFib(10)
	s := core.NewGradient(1, 2, 20)
	s.RequireTarget = true
	st := run(t, topology.NewGrid(4, 4), tree, s, nil)
	checkConservation(t, st, tree)
}

func TestStatsStringNonEmpty(t *testing.T) {
	tree := workload.NewFib(8)
	st := run(t, topology.NewGrid(3, 3), tree, core.NewCWN(3, 1), nil)
	if st.String() == "" {
		t.Fatal("empty Stats.String")
	}
}

func TestRootPEPlacement(t *testing.T) {
	tree := workload.NewFib(8)
	st := run(t, topology.NewGrid(3, 3), tree, core.NewLocal(), func(c *machine.Config) {
		c.RootPE = 4
	})
	if st.BusyPerPE[4] == 0 {
		t.Fatal("work did not start at configured RootPE")
	}
	if st.BusyPerPE[0] != 0 {
		t.Fatal("work leaked to PE 0 under Local with RootPE=4")
	}
}

func BenchmarkCWNGrid10x10Fib13(b *testing.B) {
	tree := workload.NewFib(13)
	topo := topology.NewGrid(10, 10)
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig()
		st := machine.New(topo, tree, core.PaperCWNGrid(), cfg).Run()
		if !st.Completed {
			b.Fatal("incomplete")
		}
	}
}

func BenchmarkGMGrid10x10Fib13(b *testing.B) {
	tree := workload.NewFib(13)
	topo := topology.NewGrid(10, 10)
	for i := 0; i < b.N; i++ {
		cfg := machine.DefaultConfig()
		st := machine.New(topo, tree, core.PaperGMGrid(), cfg).Run()
		if !st.Completed {
			b.Fatal("incomplete")
		}
	}
}

package machine

import (
	"fmt"

	"cwnsim/internal/sim"
)

// chanState models one communication channel (link or bus) as a serial
// FIFO server: exactly one message occupies the channel at a time;
// requests queue in arrival order. This mirrors ORACLE's "one process
// per communication channel" contention model without materializing a
// queue — because service is FIFO and non-preemptive, tracking the time
// the channel frees up is sufficient.
//
// Channel states are stored by value in Machine.chans — one contiguous
// slice whose addresses stay stable (it never grows after construction)
// — with members a subslice of one flat backing array, so a million-PE
// machine's two million channels cost three allocations, not two
// million scattered ones.
type chanState struct {
	members   []int
	busyUntil sim.Time
	busyTotal sim.Time // scheduled occupancy, including not-yet-elapsed tail
	messages  int64

	// Scenario state. degrade multiplies occupancy durations (0 =
	// nominal, the untouched fast path). down marks a full outage:
	// messages hold at the channel in arrival order and flush when the
	// link is restored.
	degrade float64
	down    bool
	held    []heldMsg

	// Sharding (zero on sequential machines). Each shard holds its own
	// copy of every chanState its PEs attach to — a directional
	// half-channel: occupancy
	// accrues on the sending side's copy, and finalize sums the sides.
	// crossTo lists the other shards owning members of this channel
	// (ascending; nil for shard-internal channels), and localMembers
	// counts the members the owning shard holds — a broadcast with
	// localMembers < 2 has no local receivers.
	crossTo      []int
	localMembers int
}

// chanAt resolves a global channel ID against either layout: dense
// machines index chans directly, multi-shard machines go through the
// sparse map. Nil means no owned PE attaches to the channel — possible
// only on the sparse layout, and only for callers (scenario link ops)
// that walk scripted channel IDs rather than an owned PE's attachments.
func (m *Machine) chanAt(ci int) *chanState {
	if m.chanIdx == nil {
		return &m.chans[ci]
	}
	if li := m.chanIdx[ci]; li >= 0 {
		return &m.chans[li]
	}
	return nil
}

// heldMsg is one transmission parked at a downed channel.
type heldMsg struct {
	w   *wireMsg
	dur sim.Time
}

// committedBusy returns the occupancy that has actually elapsed by now.
// busyTotal is charged in full at transmit time, but a run that stops
// with messages still on the wire (MaxTime, or completion with control
// traffic in flight) must not report the unelapsed tail — which is
// exactly busyUntil-now, because a backlogged channel is continuously
// busy from now until it drains.
func (ch *chanState) committedBusy(now sim.Time) sim.Time {
	b := ch.busyTotal
	if ch.busyUntil > now {
		b -= ch.busyUntil - now
	}
	return b
}

// MsgKind classifies traffic for accounting.
type MsgKind uint8

const (
	// MsgGoal is a goal (new work) message.
	MsgGoal MsgKind = iota
	// MsgResponse is a completed goal's value travelling to its parent.
	MsgResponse
	// MsgLoad is the short periodic load-information word.
	MsgLoad
	// MsgControl is a strategy control message (e.g. GM proximity).
	MsgControl
	numMsgKinds
)

func (k MsgKind) String() string {
	switch k {
	case MsgGoal:
		return "goal"
	case MsgResponse:
		return "response"
	case MsgLoad:
		return "load"
	case MsgControl:
		return "control"
	default:
		return "unknown"
	}
}

// wireKind discriminates in-flight wire messages.
type wireKind uint8

const (
	// wireGoal is a single goal hop whose receiver's strategy handles
	// arrival (SendGoal).
	wireGoal wireKind = iota
	// wireGoalRoute is one hop of a shortest-path goal route; only the
	// final PE's strategy sees the arrival (RouteGoal).
	wireGoalRoute
	// wireResp is one hop of a response travelling to its parent PE.
	wireResp
	// wireCtrl is a point-to-point strategy control payload.
	wireCtrl
	// wireLoadBcast is a load broadcast transaction on one channel.
	wireLoadBcast
	// wireCtrlBcast is a control broadcast transaction on one channel.
	wireCtrlBcast
	// wireEnvBcast is a failed/recovered PE's immediate load broadcast
	// carrying the availability notification: receivers record the load
	// word as usual and FailureAware nodes additionally get the
	// PEFailed/PERecovered event. Counted and charged exactly like the
	// load word it replaces, so sentinel-only strategies see bit-for-bit
	// the PR 3 behaviour.
	wireEnvBcast
)

// envNote is the payload of a wireEnvBcast: which availability event,
// about which PE.
type envNote struct {
	kind EventKind
	pe   int
}

// wireMsg is one message occupying a channel: the typed, pooled
// replacement for the per-hop closures the hot path used to allocate.
// It implements sim.Action; delivery dispatches on kind. Messages are
// recycled through the machine's free list the moment they deliver.
//
//simlint:pooled
type wireMsg struct {
	m        *Machine //simlint:keep rebound on every newMsg pop; pooled lists may cross runs (Pool), where the old machine is dead but unreachable state, not an aliasing hazard
	kind     wireKind
	ch       *chanState // broadcast kinds: deliver to all other members
	goal     *Goal
	resp     response
	payload  any
	from     int // sending PE of this hop
	to       int // receiving PE of this hop
	dst      int // final destination (wireGoalRoute)
	sentLoad int32
}

// newMsg pops a message from the free list (or allocates the pool's
// next entry) with the common fields set.
func (m *Machine) newMsg(kind wireKind, from int, sentLoad int) *wireMsg {
	var w *wireMsg
	if n := len(m.msgFree); n > 0 {
		w = m.msgFree[n-1]
		m.msgFree[n-1] = nil
		m.msgFree = m.msgFree[:n-1]
	} else {
		if len(m.msgChunk) == 0 {
			m.msgChunk = make([]wireMsg, arenaChunk)
		}
		w = &m.msgChunk[0]
		m.msgChunk = m.msgChunk[1:]
	}
	w.m = m // free lists may be shared across runs (Pool)
	w.kind = kind
	w.from = from
	w.sentLoad = int32(sentLoad)
	return w
}

// freeMsg clears the message's references and returns it to the pool.
//
//simlint:free
func (m *Machine) freeMsg(w *wireMsg) {
	w.ch = nil
	w.goal = nil
	w.payload = nil
	w.resp = response{}
	m.msgFree = append(m.msgFree, w)
}

// Act delivers the message. It copies what it needs, recycles itself,
// then dispatches — so nested transmissions triggered by the delivery
// (forwarded goals, next response hops) reuse this very message.
func (w *wireMsg) Act() {
	m, kind, ch := w.m, w.kind, w.ch
	g, resp, payload := w.goal, w.resp, w.payload
	from, to, dst, sentLoad := w.from, w.to, w.dst, int(w.sentLoad)
	m.freeMsg(w)

	switch kind {
	case wireGoal:
		m.goalsInTransit--
		rcv := m.pes[to]
		if m.cfg.PiggybackLoad {
			rcv.noteLoad(from, sentLoad)
		}
		if m.lossy && g.epoch != g.job.epoch {
			m.stats.GoalsLost++ // its attempt died in a crash mid-flight
			m.freeGoal(g)
			return
		}
		if m.peFailed[rcv.lx] {
			m.requeueGoal(to, g)
			return
		}
		rcv.node.HandleEvent(Event{Kind: GoalArrived, Goal: g, From: from})
	case wireGoalRoute:
		m.goalsInTransit--
		if m.cfg.PiggybackLoad {
			m.pes[to].noteLoad(from, sentLoad)
		}
		if m.lossy && g.epoch != g.job.epoch {
			m.stats.GoalsLost++
			m.freeGoal(g)
			return
		}
		if to == dst {
			if m.peFailed[m.pes[to].lx] {
				m.requeueGoal(to, g)
				return
			}
			m.pes[to].node.HandleEvent(Event{Kind: GoalArrived, Goal: g, From: from})
			return
		}
		m.routeGoal(to, dst, g)
	case wireResp:
		m.respsInTransit--
		if m.cfg.PiggybackLoad {
			m.pes[to].noteLoad(from, sentLoad)
		}
		m.routeResponse(to, resp)
	case wireCtrl:
		rcv := m.pes[to]
		if m.cfg.PiggybackLoad {
			rcv.noteLoad(from, sentLoad)
		}
		rcv.node.HandleEvent(Event{Kind: Control, From: from, Payload: payload})
	// Broadcast deliveries walk the channel's full member list; on a
	// sharded machine only this shard's members exist in m.pes (the
	// cross-shard clone delivers to each remote shard's members there),
	// so the nil check doubles as the ownership filter.
	case wireLoadBcast:
		for _, member := range ch.members {
			if member == from {
				continue
			}
			if rcv := m.pes[member]; rcv != nil {
				rcv.noteLoad(from, sentLoad)
			}
		}
	case wireCtrlBcast:
		for _, member := range ch.members {
			if member == from {
				continue
			}
			if rcv := m.pes[member]; rcv != nil {
				rcv.node.HandleEvent(Event{Kind: Control, From: from, Payload: payload})
			}
		}
	case wireEnvBcast:
		note := payload.(envNote)
		for _, member := range ch.members {
			if member == from {
				continue
			}
			rcv := m.pes[member]
			if rcv == nil {
				continue
			}
			rcv.noteLoad(from, sentLoad)
			// Broadcast deliveries must be idempotent (a double-lattice
			// pair hears each transaction twice, once per shared bus):
			// only availability TRANSITIONS raise the event, so a
			// failure-aware node reacts exactly once per failure.
			i := rcv.nbrIdx(note.pe)
			if i < 0 {
				continue
			}
			downNow := note.kind == PEFailed
			if rcv.nbrDown[i] == downNow {
				continue // the second bus's copy of the same transition
			}
			rcv.nbrDown[i] = downNow
			if rcv.wantsFailure {
				rcv.node.HandleEvent(Event{Kind: note.kind, From: note.pe})
			}
		}
	}
}

// transmit occupies the channel for dur units starting when it next
// frees up, then delivers the message. On a downed channel the message
// holds at the sender instead, transmitting (in arrival order) when the
// link is restored.
func (m *Machine) transmit(ch *chanState, dur sim.Time, w *wireMsg) {
	if ch.down {
		ch.held = append(ch.held, heldMsg{w: w, dur: dur})
		return
	}
	end := ch.occupy(m.eng.Now(), dur)
	if m.grp != nil && m.crossShard(ch, end, w) {
		return
	}
	m.eng.AtAction(end, w)
}

// crossShard hands w off to the shard(s) owning its receiver(s),
// reporting whether the message was fully handed off (nothing left to
// deliver locally). Point-to-point kinds route by the receiving PE's
// owner; broadcast kinds clone one message per remote member shard (the
// clone re-delivers on the receiver's copy of the channel, where the
// nil-guarded member walk acts as the ownership filter) and keep the
// original only if this shard holds another member to hear it.
func (m *Machine) crossShard(ch *chanState, end sim.Time, w *wireMsg) bool {
	switch w.kind {
	case wireGoal, wireGoalRoute, wireResp, wireCtrl:
		d := m.grp.part.Assign[w.to]
		if d == m.shardID {
			return false
		}
		m.handOff(d, end, w)
		return true
	default: // wireLoadBcast, wireCtrlBcast, wireEnvBcast
		if ch.crossTo == nil {
			return false
		}
		for _, d := range ch.crossTo {
			c := m.newMsg(w.kind, w.from, int(w.sentLoad))
			c.ch = ch
			c.payload = w.payload
			m.handOff(d, end, c)
		}
		if ch.localMembers >= 2 {
			return false
		}
		m.freeMsg(w)
		return true
	}
}

// handOff queues w on the per-destination-shard outbox the coordinator
// drains at the next window barrier. Conservative lookahead guarantees
// the delivery time lies beyond the current window — asserted here,
// because a violation would silently deliver into the receiver's past.
func (m *Machine) handOff(dst int, at sim.Time, w *wireMsg) {
	if at <= m.grp.winEnd {
		panic(fmt.Sprintf("machine: cross-shard delivery at t=%d inside window ending %d violates lookahead", at, m.grp.winEnd))
	}
	m.xout[dst] = append(m.xout[dst], xmsg{at: at, w: w})
}

// transmitFunc is transmit for cold paths and tests that want a closure
// instead of a pooled message. It ignores link outages (no caller
// transmits closures on a scripted channel).
func (m *Machine) transmitFunc(ch *chanState, dur sim.Time, deliver func()) sim.Time {
	end := ch.occupy(m.eng.Now(), dur)
	m.eng.At(end, deliver)
	return end
}

// occupy reserves the channel's next dur free units and returns when the
// reservation ends. A degraded channel stretches the occupancy by its
// factor (floor one unit, so a message never becomes free).
func (ch *chanState) occupy(now, dur sim.Time) sim.Time {
	if ch.degrade != 0 {
		dur = sim.Time(float64(dur) * ch.degrade)
		if dur < 1 {
			dur = 1
		}
	}
	start := now
	if ch.busyUntil > start {
		start = ch.busyUntil
	}
	end := start + dur
	ch.busyUntil = end
	ch.busyTotal += dur
	ch.messages++
	return end
}

// pickChannel returns the least-backlogged channel among the candidates
// (channel IDs), breaking ties toward the lower ID. Bus topologies give
// a PE pair up to two parallel buses; links give exactly one. A downed
// channel is chosen only when every candidate is down (the message then
// holds at it until restore).
func (m *Machine) pickChannel(candidates []int) *chanState {
	best := m.chanAt(candidates[0])
	for _, ci := range candidates[1:] {
		ch := m.chanAt(ci)
		if best.down != ch.down {
			if best.down {
				best = ch
			}
			continue
		}
		if ch.busyUntil < best.busyUntil {
			best = ch
		}
	}
	return best
}

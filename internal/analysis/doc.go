// Package analysis is the repo's custom static-analysis suite: a
// small stdlib-only go/analysis-style framework plus the four simlint
// analyzers that enforce the simulator's core contracts at vet time.
// The framework mirrors the shape of golang.org/x/tools/go/analysis —
// an Analyzer owns a Run function over a per-package Pass — but
// depends only on the standard library, because this module vendors
// nothing and builds offline. cmd/simlint adapts the same analyzers to
// the `go vet -vettool` unitchecker protocol; see that command's doc
// for how CI runs the suite.
//
// # The analyzers
//
// detrand — determinism. A run must be a pure function of its seed:
// Shards=1 reproduces the sequential machine bit-for-bit and K>=2
// equals its serial replay. In simulation-path packages (internal/sim,
// internal/machine, internal/scenario, internal/topology) the analyzer
// flags wall-clock reads (time.Now), draws from the process-global
// math/rand stream, and map iteration whose effects depend on the
// observed order — a map range is tolerated only when its body just
// collects keys/values into slices that a later sort.*/slices.* call
// in the same block orders, or only deletes from the ranged map.
// Functions tagged //simlint:observer (measurement code) must draw
// randomness only from streams tagged //simlint:obsstream: drawing the
// observer ticker's stagger phase from the shared simulation stream
// was the PR 2 bug where enabling SampleInterval changed the simulated
// result.
//
// statsmerge — shard-merge completeness. Every field of a struct
// tagged //simlint:mergeable must be referenced by the type's merge
// method (a method named merge or Merge taking one parameter of the
// same type), so a field added to machine.Stats but forgotten in the
// shard fold fails the build instead of silently dropping a statistic
// from every sharded run. Fields deliberately outside the merge carry
// //simlint:nomerge <reason>.
//
// poolsafe — free-list discipline. For types tagged //simlint:pooled
// and free functions tagged //simlint:free: a free function must zero
// every pointer-bearing field of its subject before parking it (or
// clear() / element-wipe a released []T slab), and callers must not
// touch an object after passing it to a free function — later
// statements in the same block that read the freed variable are
// flagged until the variable is rebound. Fields deliberately retained
// across recycles carry //simlint:keep <reason>.
//
// seqonly — the sequential-only boundary. Functions reachable from a
// file tagged //simlint:seqonly (machine/shard.go) must not reach
// Config fields tagged //simlint:globalstate (Scenario, Trace, Pool,
// SampleInterval, MonitorPE) unguarded: Config.validate rejects those
// features for sharded runs, so shard-path code touching them either
// races or silently diverges from the serial replay. A reference is
// allowed in a conditional position or inside an if body whose
// condition tests the same field; functions safe for subtler reasons
// are tagged //simlint:seqsafe <reason> and the package-local call
// graph traversal stops there.
//
// # Directive vocabulary
//
// All annotations are directive comments (hidden from godoc, like
// //go:build). Verbs with a <reason> operand are rejected when the
// reason is empty — an unexplained exception is itself a finding.
//
//	//simlint:pooled               on a type: recycled through a free list
//	//simlint:free                 on a func: parks its pooled param/result
//	//simlint:mergeable            on a struct: shard copies merge field-exactly
//	//simlint:nomerge <reason>     on a field: deliberately outside the merge
//	//simlint:keep <reason>        on a field: deliberately not zeroed on free
//	//simlint:globalstate <reason> on a field: sequential-only feature
//	//simlint:seqsafe <reason>     on a func: trusted seqonly boundary
//	//simlint:seqonly              anywhere in a file: roots the shard path
//	//simlint:observer             on a func: measurement code
//	//simlint:obsstream            on a field: the dedicated observer RNG
//
// # Suppressions
//
// A finding that is a deliberate, explained exception is silenced in
// place:
//
//	//lint:ignore detrand reason the analyzer cannot see
//
// The directive silences the named analyzers (comma-separated;
// "simlint" silences the whole suite) on its own line and, when it
// stands alone, on the next line. The reason is mandatory. Fixture
// tests (testdata/src/, driven by the analysistest subpackage) pin
// both the findings and the suppression behavior; the
// TestSuiteCleanOnRepo test and the CI simlint step hold the module
// itself at zero findings.
package analysis

package machine

import (
	"testing"

	"cwnsim/internal/scenario"
	"cwnsim/internal/sim"
	"cwnsim/internal/topology"
	"cwnsim/internal/workload"
)

// pushRight is a test strategy that exports every goal created on PE 0
// to its highest-numbered neighbor and keeps everything else local —
// deterministic cross-link traffic for outage tests.
type pushRight struct{}

func (pushRight) Name() string                { return "push-right" }
func (pushRight) Setup(*Machine)              {}
func (pushRight) NewNode(pe *PE) NodeStrategy { return AdaptNode(pushRightNode{pe}) }

type pushRightNode struct{ pe *PE }

func (n pushRightNode) PlaceNewGoal(g *Goal) {
	nbrs := n.pe.Neighbors()
	if n.pe.ID() == 0 && len(nbrs) > 0 {
		n.pe.SendGoal(nbrs[len(nbrs)-1], g)
		return
	}
	n.pe.Accept(g)
}
func (n pushRightNode) GoalArrived(g *Goal, from int) { n.pe.Accept(g) }
func (n pushRightNode) Control(int, any)              {}

// fingerprint captures everything a bit-for-bit comparison of two runs
// needs: the event sequence (makespan+events), the computed result, and
// the accounting that any divergence would disturb.
type fingerprint struct {
	makespan  sim.Time
	events    uint64
	result    int64
	totalBusy sim.Time
	msgs      [numMsgKinds]int64
	sojMean   float64
	jobsDone  int64
}

func fp(st *Stats) fingerprint {
	return fingerprint{
		makespan:  st.Makespan,
		events:    st.Events,
		result:    st.Result,
		totalBusy: st.TotalBusy,
		msgs:      st.MsgCounts,
		sojMean:   st.Sojourn.Mean(),
		jobsDone:  st.JobsDone,
	}
}

// TestEmptyScenarioBitForBit pins the tentpole's no-cost guarantee: a
// nil scenario and an explicitly empty script must reproduce the
// unscripted run bit for bit — same event sequence, same results, same
// message counts — across closed and open system modes.
func TestEmptyScenarioBitForBit(t *testing.T) {
	run := func(sc *scenario.Script, stream bool) fingerprint {
		cfg := DefaultConfig()
		cfg.Scenario = sc
		topo := topology.NewGrid(3, 3)
		tree := workload.NewFib(8)
		if stream {
			return fp(NewStream(topo, NewPoisson(tree, 60, 40), pushRight{}, cfg).Run())
		}
		return fp(New(topo, tree, pushRight{}, cfg).Run())
	}
	for _, stream := range []bool{false, true} {
		base := run(nil, stream)
		if empty := run(&scenario.Script{}, stream); empty != base {
			t.Errorf("stream=%v: empty script diverged: %+v vs %+v", stream, empty, base)
		}
	}
}

// TestSlowPERescalesInFlightService pins the speed-change semantics on
// an exactly computable case: one PE serving a chain of unit-work goals
// (grain 10, combine 5) halves its speed mid-run, and every remaining
// unit of work takes exactly twice as long — including the remainder of
// the goal in service when the event fires.
func TestSlowPERescalesInFlightService(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	base := New(topology.NewSingle(), workload.NewChain(10), keepLocal{}, cfg).Run()
	if !base.Completed {
		t.Fatal("baseline did not complete")
	}

	// Halve the speed at t=25: 25 units of work are done, the rest — in
	// flight and queued — takes 2x. Expected makespan: 25 + 2*(base-25).
	cfg2 := cfg
	cfg2.Scenario = scenario.MustParse("slow:pes=0:x=0.5@t=25")
	slowed := New(topology.NewSingle(), workload.NewChain(10), keepLocal{}, cfg2).Run()
	if !slowed.Completed {
		t.Fatal("slowed run did not complete")
	}
	want := 25 + 2*(base.Makespan-25)
	if slowed.Makespan != want {
		t.Fatalf("slowed makespan = %d, want %d (base %d)", slowed.Makespan, want, base.Makespan)
	}
	if slowed.Result != base.Result {
		t.Fatalf("slowdown changed the result: %d vs %d", slowed.Result, base.Result)
	}
	// Busy-time accounting must follow the stretched service.
	if slowed.TotalBusy != slowed.Makespan {
		t.Fatalf("slowed TotalBusy = %d, want %d (PE continuously busy)", slowed.TotalBusy, slowed.Makespan)
	}

	// Restoring the speed at t=55 (30 slowed units = 15 units of work
	// done by then) returns the remaining work to nominal pace.
	cfg3 := cfg
	cfg3.Scenario = scenario.MustParse("slow:pes=0:x=0.5@t=25,restore@t=55")
	restored := New(topology.NewSingle(), workload.NewChain(10), keepLocal{}, cfg3).Run()
	want = base.Makespan + 15 // the slowed interval [25,55) performed 15 units instead of 30
	if restored.Makespan != want {
		t.Fatalf("restored makespan = %d, want %d", restored.Makespan, want)
	}
}

// TestFailEvacuatesQueueAndRecovers drives a blackout through the
// drain/requeue semantics end to end: a keep-local machine has all its
// work piled on PE 0; failing PE 0 evacuates the queued goals to the
// live neighbor and aborts the in-service goal, responses freeze on the
// failed PE, and recovery drains everything to the correct result.
func TestFailEvacuatesQueueAndRecovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("fail:pes=0@t=35,recover@t=400")
	tree := workload.NewFib(6)
	st := New(topology.NewGrid(1, 2), tree, keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("blackout run did not complete: %d/%d jobs", st.JobsDone, st.JobsInjected)
	}
	if st.Result != workload.FibValue(6) {
		t.Fatalf("Result = %d, want fib(6) = %d", st.Result, workload.FibValue(6))
	}
	if st.GoalsRequeued == 0 {
		t.Fatal("no goals evacuated from the failed PE")
	}
	if st.ServiceAborts != 1 {
		t.Fatalf("ServiceAborts = %d, want 1 (the goal in service at t=35)", st.ServiceAborts)
	}
	if st.DownPETime != 400-35 {
		t.Fatalf("DownPETime = %d, want %d", st.DownPETime, 400-35)
	}
	// The evacuated goals executed on PE 1 while PE 0 was down.
	if st.GoalsPerPE[1] == 0 {
		t.Fatal("refuge PE executed nothing")
	}
	// Capacity-aware utilization exceeds the naive figure, which charges
	// the blackout as idle time.
	if st.EffectiveUtilization() <= st.Utilization() {
		t.Fatalf("EffectiveUtilization %f <= Utilization %f despite downtime",
			st.EffectiveUtilization(), st.Utilization())
	}
}

// TestFailedPEAdvertisesSentinelLoad checks the steering mechanism:
// a failed PE reports FailedLoad and broadcasts it immediately, so
// load-comparing neighbors avoid it without waiting for a tick.
func TestFailedPEAdvertisesSentinelLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("fail:pes=1@t=5,recover@t=100")
	m := New(topology.NewGrid(1, 2), workload.NewChain(30), keepLocal{}, cfg)
	m.eng.RunUntil(20) // past the failure and its broadcast delivery
	if got := m.pes[1].Load(); got != FailedLoad {
		t.Fatalf("failed PE advertises load %d, want %d", got, FailedLoad)
	}
	if !m.pes[1].Failed() {
		t.Fatal("PE 1 not marked failed")
	}
	if load, seen := m.pes[0].KnownLoad(1); load != FailedLoad || seen < 5 {
		t.Fatalf("neighbor heard load %d (seen %d), want the fail broadcast", load, seen)
	}
	m.eng.RunUntil(200)
	if m.pes[1].Failed() {
		t.Fatal("PE 1 did not recover")
	}
	if load, _ := m.pes[0].KnownLoad(1); load == FailedLoad {
		t.Fatal("recovery broadcast did not clear the sentinel")
	}
}

// TestArrivingGoalsRedirectOffFailedPE pins the delivery-time redirect:
// goals sent toward a blacked-out PE are evacuated by its co-processor
// to the nearest live PE and counted as requeued.
func TestArrivingGoalsRedirectOffFailedPE(t *testing.T) {
	// pushRight exports every goal created on PE 0 to PE 1; with PE 1
	// down the whole time work must still complete — on PEs 0 and 2 —
	// and every export to PE 1 counts as a redirect.
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("fail:pes=1@t=0")
	st := New(topology.NewGrid(1, 3), workload.NewFib(7), pushRight{}, cfg).Run()
	if !st.Completed {
		t.Fatal("run did not complete with PE 1 down")
	}
	if st.Result != workload.FibValue(7) {
		t.Fatalf("Result = %d, want fib(7)", st.Result)
	}
	if st.GoalsRequeued == 0 {
		t.Fatal("no redirects counted")
	}
	if st.GoalsPerPE[1] != 0 {
		t.Fatalf("failed PE executed %d goals", st.GoalsPerPE[1])
	}
}

// TestInjectRedirectsOffFailedRoot covers the ingress path: jobs
// arriving while the root PE is down are accepted at the nearest live
// PE and counted.
func TestInjectRedirectsOffFailedRoot(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("fail:pes=0@t=10,recover@t=2000")
	tree := workload.NewFib(4)
	st := NewStream(topology.NewGrid(1, 2), NewFixedInterval(tree, 100, 10), keepLocal{}, cfg).Run()
	if !st.Completed {
		t.Fatalf("stream did not drain: %d/%d", st.JobsDone, st.JobsInjected)
	}
	if st.RootRedirects == 0 {
		t.Fatal("no injections redirected off the failed root")
	}
	if st.JobsDone != 10 {
		t.Fatalf("JobsDone = %d, want 10", st.JobsDone)
	}
}

// TestFailingEveryPEPanics pins both layers of the last-live-PE guard:
// a single all-PE fail event is rejected statically at construction,
// and cumulative whole-machine failure across events (which validation
// cannot see — it depends on recovers in between) panics at apply time.
func TestFailingEveryPEPanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("constructing a machine with an all-PE fail event did not panic")
			}
		}()
		cfg := DefaultConfig()
		cfg.Scenario = scenario.MustParse("fail:pes=100%@t=10")
		New(topology.NewGrid(1, 2), workload.NewChain(50), keepLocal{}, cfg)
	}()

	cfg := DefaultConfig()
	cfg.Scenario = scenario.MustParse("fail:pes=0@t=10,fail:pes=1@t=20")
	m := New(topology.NewGrid(1, 2), workload.NewChain(50), keepLocal{}, cfg)
	defer func() {
		if recover() == nil {
			t.Fatal("cumulatively failing every PE did not panic")
		}
	}()
	m.Run()
}

// TestLinkOutageHoldsAndFlushes pins outage semantics: messages bound
// for a downed link hold at the sender and flush in order on restore,
// so the run completes with the same result, later.
func TestLinkOutageHoldsAndFlushes(t *testing.T) {
	run := func(script string) *Stats {
		cfg := DefaultConfig()
		cfg.LoadInterval = 0
		if script != "" {
			cfg.Scenario = scenario.MustParse(script)
		}
		return New(topology.NewGrid(1, 2), workload.NewFib(7), pushRight{}, cfg).Run()
	}
	base := run("")
	out := run("droplink:a=0:b=1@t=5,restorelink:a=0:b=1@t=5000")
	if !out.Completed {
		t.Fatal("outage run did not complete after restore")
	}
	if out.Result != base.Result {
		t.Fatalf("outage changed the result: %d vs %d", out.Result, base.Result)
	}
	if out.Makespan <= 5000 {
		t.Fatalf("outage makespan = %d, want > restore time (work was blocked)", out.Makespan)
	}
	if out.MsgCounts[MsgGoal] != base.MsgCounts[MsgGoal] {
		t.Fatalf("outage lost messages: %d goal msgs vs %d", out.MsgCounts[MsgGoal], base.MsgCounts[MsgGoal])
	}
}

// TestDegradeAfterOutageBringsLinkUp pins the absolute-state rule: a
// degradelink with a positive factor on a downed link ends the outage
// (flushing held messages) instead of leaving it silently down — no
// restorelink ever fires in this script, so completion itself proves
// the flush ran.
func TestDegradeAfterOutageBringsLinkUp(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LoadInterval = 0
	cfg.Scenario = scenario.MustParse("droplink:a=0:b=1@t=5,degradelink:a=0:b=1:x=2@t=500")
	st := New(topology.NewGrid(1, 2), workload.NewFib(7), pushRight{}, cfg).Run()
	if !st.Completed {
		t.Fatal("run did not complete: a positive degrade factor left the link down")
	}
	if st.Result != workload.FibValue(7) {
		t.Fatalf("Result = %d, want fib(7)", st.Result)
	}
	if st.Makespan <= 500 {
		t.Fatalf("makespan = %d, want > 500 (work was blocked during the outage)", st.Makespan)
	}
}

// TestDegradedLinkStretchesOccupancy pins degradation: a 4x-degraded
// link charges 4x the occupancy per message and slows the run without
// changing what is computed.
func TestDegradedLinkStretchesOccupancy(t *testing.T) {
	run := func(script string) *Stats {
		cfg := DefaultConfig()
		cfg.LoadInterval = 0
		if script != "" {
			cfg.Scenario = scenario.MustParse(script)
		}
		return New(topology.NewGrid(1, 2), workload.NewFib(7), pushRight{}, cfg).Run()
	}
	base := run("")
	deg := run("degradelink:a=0:b=1:x=4@t=0")
	if !deg.Completed || deg.Result != base.Result {
		t.Fatal("degraded run broken")
	}
	if deg.Makespan <= base.Makespan {
		t.Fatalf("degraded makespan %d <= base %d", deg.Makespan, base.Makespan)
	}
	if deg.ChannelBusy[0] != 4*base.ChannelBusy[0] {
		t.Fatalf("degraded channel busy = %d, want 4x%d", deg.ChannelBusy[0], base.ChannelBusy[0])
	}
}

// TestLoadShockAcceleratesArrivals pins the rate multiplier: a 4x
// shock compresses every subsequently drawn inter-arrival gap.
func TestLoadShockAcceleratesArrivals(t *testing.T) {
	run := func(script string) *Stats {
		cfg := DefaultConfig()
		if script != "" {
			cfg.Scenario = scenario.MustParse(script)
		}
		tree := workload.NewFib(4)
		return NewStream(topology.NewSingle(), NewFixedInterval(tree, 100, 10), keepLocal{}, cfg).Run()
	}
	base := run("")
	shocked := run("shock:x=4@t=0")
	// Gap 100 becomes 25 for every draw after the armed first arrival:
	// last injection at 9*25 instead of 9*100... except the first gap was
	// already armed at rate 1. Injections: 0, then 100?, no — the shock
	// fires at t=0 before the first *future* gap is drawn only for gaps
	// pulled after it; the pump drew (and armed) job 2's gap at t=0
	// during Run's initial pump, before events fire. So: job 1 at 0,
	// job 2 at 100, jobs 3..10 at 25 apart.
	wantLast := sim.Time(100 + 8*25)
	lastBase := base.JobRecords[len(base.JobRecords)-1].InjectedAt
	lastShock := shocked.JobRecords[len(shocked.JobRecords)-1].InjectedAt
	if lastBase != 900 {
		t.Fatalf("baseline last injection at %d, want 900", lastBase)
	}
	if lastShock != wantLast {
		t.Fatalf("shocked last injection at %d, want %d", lastShock, wantLast)
	}
	if !shocked.Completed || shocked.JobsDone != 10 {
		t.Fatal("shocked stream did not drain")
	}
}

// TestItemRingPushFront covers the ring primitive the failure path
// relies on, including growth from empty and wraparound.
func TestItemRingPushFront(t *testing.T) {
	var r itemRing
	mk := func(id int64) item { return item{kind: itemGoal, goal: &Goal{ID: id}} }
	r.pushFront(mk(2)) // grows from empty
	r.push(mk(3))
	r.pushFront(mk(1))
	if r.len() != 3 {
		t.Fatalf("len = %d", r.len())
	}
	for want := int64(1); want <= 3; want++ {
		if got := r.popFront(); got.goal.ID != want {
			t.Fatalf("popFront = %d, want %d", got.goal.ID, want)
		}
	}
	// Wraparound: fill, drain some, push past the seam, then pushFront.
	r = itemRing{}
	for i := int64(0); i < 20; i++ {
		r.push(mk(i))
	}
	for i := 0; i < 15; i++ {
		r.popFront()
	}
	r.pushFront(mk(99))
	if got := r.popFront(); got.goal.ID != 99 {
		t.Fatalf("wrapped pushFront popped %d", got.goal.ID)
	}
	if got := r.popFront(); got.goal.ID != 15 {
		t.Fatalf("order disturbed: %d", got.goal.ID)
	}
}

// TestScenarioDeterministicPerSeed runs the same blackout twice and
// demands identical fingerprints — the subsystem adds no hidden
// nondeterminism.
func TestScenarioDeterministicPerSeed(t *testing.T) {
	run := func() fingerprint {
		cfg := DefaultConfig()
		cfg.Scenario = scenario.Blackout(0.25, 500, 1500)
		tree := workload.NewFib(6)
		return fp(NewStream(topology.NewGrid(2, 2), NewPoisson(tree, 50, 50), pushRight{}, cfg).Run())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("scenario run not deterministic: %+v vs %+v", a, b)
	}
}

package experiments

import (
	"strings"
	"testing"
)

// TestShardCrossMatrix certifies the sharded runtime on the pinned
// matrix with the real strategies: Shards=1 bit-for-bit against
// sequential, parallel bit-for-bit against serial replay, and
// conservation against sequential at K=4. cmd/bench runs the same
// check as its regression gate; this is the tree's own copy.
func TestShardCrossMatrix(t *testing.T) {
	for i, c := range ShardCrossMatrix() {
		if testing.Short() && i >= 2 {
			break // -short (and the race smoke) certifies the first two cells
		}
		t.Run(c.Name, func(t *testing.T) {
			if err := ShardCrossCheck(c.Spec, 4); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestShardedRunSpec pins the RunSpec plumbing: Shards reaches the
// machine (a sharded run still completes and matches the sequential
// answer) and pooled sweep workers skip the pool for sharded specs
// rather than tripping validate.
func TestShardedRunSpec(t *testing.T) {
	spec := RunSpec{Topo: Grid(6), Workload: Fib(10), Strategy: CWN(5, 2), Shards: 3}
	results, err := RunAll([]RunSpec{spec}, 2) // RunAll workers lend pools
	if err != nil {
		t.Fatal(err)
	}
	r := results[0]
	if !r.Stats.Completed {
		t.Fatal("sharded run did not complete")
	}
	seq := spec
	seq.Shards = 0
	sr, err := seq.ExecuteErr()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Result != sr.Stats.Result || r.Stats.Goals != sr.Stats.Goals {
		t.Fatalf("sharded result %d (%d goals) vs sequential %d (%d goals)",
			r.Stats.Result, r.Stats.Goals, sr.Stats.Result, sr.Stats.Goals)
	}
}

// TestShardedIdealRejected pins the SequentialOnly gate end to end: the
// ORACLE strategy reads every PE's true load from one timeline, so a
// sharded spec naming it must fail its run with the reason, not crash
// the sweep.
func TestShardedIdealRejected(t *testing.T) {
	spec := RunSpec{Topo: Grid(4), Workload: Fib(8),
		Strategy: StrategySpec{Kind: "ideal"}, Shards: 2}
	_, err := spec.ExecuteErr()
	if err == nil {
		t.Fatal("sharded ideal run did not fail")
	}
	if !strings.Contains(err.Error(), "cannot run sharded") {
		t.Fatalf("error %q does not name the SequentialOnly rejection", err)
	}
}
